// Open-fragment cache + parallel fan-out ablation: repeated region reads
// over a multi-fragment store, with the fragment traffic throttled to the
// Lustre-like device model so disk cost is visible.
//
// Expected shape: the cold read pays one fragment load per overlapping
// fragment; warm reads resolve every fragment from the cache and drop the
// extract phase to ~0, so warm total << cold total. Disabling the cache
// (budget 0) keeps every read at cold cost; the parallel fan-out additionally
// beats ARTSPARSE_THREADS=1 on the cold pass whenever hardware allows.
#include <unistd.h>

#include <cstdlib>

#include "bench_common.hpp"

int main() {
  using namespace artsparse;

  const Shape shape{512, 512};
  const index_t kFragments = 24;
  const Box region({0, 0}, {511, 511});

  // One fragment per row band, written once and shared by all configs.
  const auto dir = std::filesystem::temp_directory_path() /
                   ("artsparse_bench_cache_" + std::to_string(::getpid()));
  const DeviceModel device = DeviceModel::lustre_like();
  auto populate = [&](FragmentStore& store) {
    Xoshiro256 rng(7);
    const index_t band = shape.extent(0) / kFragments;
    for (index_t f = 0; f < kFragments; ++f) {
      CoordBuffer coords(2);
      std::vector<value_t> values;
      for (index_t r = f * band; r < (f + 1) * band; ++r) {
        for (index_t c = 0; c < shape.extent(1); c += 4) {
          coords.append({r, c});
          values.push_back(rng.next_double());
        }
      }
      store.write(coords, values, OrgKind::kGcsr);
    }
  };

  struct Config {
    const char* name;
    std::size_t budget;
    const char* threads;  // ARTSPARSE_THREADS value, nullptr = hardware
  };
  const Config configs[] = {
      {"uncached, 1 thread", 0, "1"},
      {"uncached, parallel", 0, nullptr},
      {"cached,   parallel", FragmentCache::kDefaultBudgetBytes, nullptr},
  };

  std::printf("Open-fragment cache ablation — %zu fragments, %s, "
              "Lustre-like device\n\n",
              static_cast<std::size_t>(kFragments),
              shape.to_string().c_str());

  TextTable table({"Config", "Cold read", "Warm read", "Warm extract",
                   "Hits", "Misses"});
  double uncached_warm = 0.0;
  double cached_warm = 0.0;
  std::size_t expected_points = 0;
  bool consistent = true;

  for (const Config& config : configs) {
    if (config.threads) {
      ::setenv("ARTSPARSE_THREADS", config.threads, 1);
    } else {
      ::unsetenv("ARTSPARSE_THREADS");
    }
    auto cache = std::make_shared<FragmentCache>(config.budget);
    FragmentStore store(dir, shape, device, CodecKind::kIdentity, cache);
    if (store.fragment_count() == 0) populate(store);

    const ReadResult cold = store.scan_region(region);
    // Best-of-3 warm reads: every fragment already resolved once.
    ReadResult warm = store.scan_region(region);
    for (int round = 0; round < 2; ++round) {
      ReadResult again = store.scan_region(region);
      if (again.times.total() < warm.times.total()) warm = again;
    }

    if (expected_points == 0) expected_points = cold.values.size();
    consistent = consistent && cold.values.size() == expected_points &&
                 warm.values.size() == expected_points;
    if (config.budget == 0) {
      uncached_warm = warm.times.total();
    } else {
      cached_warm = warm.times.total();
    }

    table.add_row({config.name, format_seconds(cold.times.total()),
                   format_seconds(warm.times.total()),
                   format_seconds(warm.times.extract),
                   std::to_string(warm.times.cache_hits),
                   std::to_string(warm.times.cache_misses)});
    std::fprintf(stderr, "  [%s] %s\n", config.name,
                 format_cache_stats(cache->stats()).c_str());
  }
  ::unsetenv("ARTSPARSE_THREADS");

  std::fputs(table.str().c_str(), stdout);
  const double speedup =
      cached_warm > 0.0 ? uncached_warm / cached_warm : 0.0;
  std::printf("\nchecks: warm cached read %.1fx faster than uncached %s; "
              "results consistent across configs %s\n",
              speedup, speedup > 1.0 ? "OK" : "UNEXPECTED",
              consistent ? "OK" : "UNEXPECTED");
  bench::emit_csv(table, "fragment_cache");

  {
    // Clean up the store directory.
    FragmentStore store(dir, shape);
    store.clear();
  }
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return (speedup > 1.0 && consistent) ? 0 : 1;
}
