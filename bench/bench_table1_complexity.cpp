// Table I: empirical scaling study backing the complexity table — build
// time, per-query read time, and index bytes as n grows, per organization.
// google-benchmark binary; run with --benchmark_filter=... to narrow.
//
// What to look for in the output:
//   Build/COO      ~ O(n) buffer copy with a tiny constant (the paper's
//                    "O(1)" counts organization work, not buffering)
//   Build/LINEAR   ~ O(n * d)
//   Build/GCSR++ GCSC++ CSF ~ O(n log n)
//   Read/COO LINEAR ~ O(n) per query
//   Read/GCSR++    ~ O(n / min(m)) per query
//   Read/CSF       ~ O(d log) per query (flat in n)
#include <benchmark/benchmark.h>

#include "artsparse.hpp"

namespace {

using namespace artsparse;

// 3-D GSP datasets of growing n; extent chosen so density stays modest.
SparseDataset dataset_for(std::int64_t n) {
  const index_t extent = 128;
  const Shape shape = Shape::uniform(3, extent);
  const double p = static_cast<double>(n) /
                   static_cast<double>(shape.element_count());
  return make_dataset(shape, GspConfig{p}, /*seed=*/4242);
}

void BM_Build(benchmark::State& state, OrgKind org) {
  const SparseDataset dataset = dataset_for(state.range(0));
  for (auto _ : state) {
    auto format = make_format(org);
    benchmark::DoNotOptimize(format->build(dataset.coords, dataset.shape));
  }
  state.SetComplexityN(static_cast<std::int64_t>(dataset.point_count()));
  state.counters["points"] = static_cast<double>(dataset.point_count());
}

void BM_Read(benchmark::State& state, OrgKind org) {
  const SparseDataset dataset = dataset_for(state.range(0));
  auto format = make_format(org);
  format->build(dataset.coords, dataset.shape);

  // Fixed query batch: 256 cells around the tensor center (hits + misses).
  CoordBuffer queries(3);
  const Box region({60, 60, 60}, {67, 67, 63});
  enumerate_cells(region, queries);

  for (auto _ : state) {
    benchmark::DoNotOptimize(format->read(queries));
  }
  state.SetComplexityN(static_cast<std::int64_t>(dataset.point_count()));
  state.counters["queries"] = static_cast<double>(queries.size());
}

void BM_IndexBytes(benchmark::State& state, OrgKind org) {
  const SparseDataset dataset = dataset_for(state.range(0));
  auto format = make_format(org);
  format->build(dataset.coords, dataset.shape);
  std::size_t bytes = 0;
  for (auto _ : state) {
    bytes = format->index_bytes();
    benchmark::DoNotOptimize(bytes);
  }
  state.counters["index_bytes"] = static_cast<double>(bytes);
  state.counters["bytes_per_point"] =
      static_cast<double>(bytes) /
      static_cast<double>(dataset.point_count());
}

void register_all() {
  // n sweep: ~8k .. ~128k points. COO/LINEAR reads are O(n * queries);
  // keep the top end modest so the whole binary stays laptop-fast.
  for (OrgKind org : kPaperOrgs) {
    const std::string name = to_string(org);
    benchmark::RegisterBenchmark(("Build/" + name).c_str(),
                                 [org](benchmark::State& s) {
                                   BM_Build(s, org);
                                 })
        ->RangeMultiplier(4)
        ->Range(8 << 10, 128 << 10)
        ->Complexity(benchmark::oNLogN)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(("Read/" + name).c_str(),
                                 [org](benchmark::State& s) {
                                   BM_Read(s, org);
                                 })
        ->RangeMultiplier(4)
        ->Range(8 << 10, 128 << 10)
        ->Complexity(benchmark::oN)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(("IndexBytes/" + name).c_str(),
                                 [org](benchmark::State& s) {
                                   BM_IndexBytes(s, org);
                                 })
        ->Arg(64 << 10)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
