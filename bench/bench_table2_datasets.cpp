// Table II: size and density of the synthetic datasets. Prints the
// generated density per (dimension, pattern) cell next to the paper's
// reported value, plus the generator parameters the calibration solved for.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace artsparse;
  const ScaleKind scale = scale_from_args(argc, argv);

  std::printf("Table II — size and density of the synthetic data sets "
              "(%s scale)\n\n",
              scale == ScaleKind::kPaper ? "paper" : "small");

  TextTable table({"Dimension and Size", "Pattern", "Paper density",
                   "Generated density", "Points", "Generator parameters"});

  for (std::size_t rank = 2; rank <= 4; ++rank) {
    for (PatternKind pattern :
         {PatternKind::kTsp, PatternKind::kGsp, PatternKind::kMsp}) {
      const Workload w = make_workload(rank, pattern, scale);
      const SparseDataset dataset = make_dataset(w.shape, w.spec, w.seed);

      std::string params;
      if (const auto* tsp = std::get_if<TspConfig>(&w.spec)) {
        params = "band half-width " + std::to_string(tsp->half_width);
      } else if (const auto* gsp = std::get_if<GspConfig>(&w.spec)) {
        params = "fill p=" + format_fixed(gsp->fill_probability, 4);
      } else if (const auto* msp = std::get_if<MspConfig>(&w.spec)) {
        params = "bg p=" + format_fixed(msp->background_probability, 4) +
                 ", region p=" +
                 format_fixed(msp->region_fill_probability, 4);
      }

      table.add_row({w.shape.to_string(), to_string(pattern),
                     format_percent(table2_density(rank, pattern)),
                     format_percent(dataset.density()),
                     std::to_string(dataset.point_count()), params});
    }
  }

  std::fputs(table.str().c_str(), stdout);
  std::printf("\nNote: the paper's stated generator parameters do not "
              "reproduce its own Table II densities; these generators are "
              "calibrated to the reported densities (DESIGN.md Section 5).\n");
  bench::emit_csv(table, "table2_datasets");
  return 0;
}
