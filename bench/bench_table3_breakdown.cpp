// Table III: breakdown of the total time to write sparse tensors for the
// 4-D MSP pattern — Build / Reorg / Write / Others per organization, with
// Build further split into its sort stage (the part ARTSPARSE_THREADS
// scales) and the serial structure assembly.
//
// Expected shape (paper): COO builds in ~zero time but writes the largest
// file; LINEAR's total beats COO; GCSC++ builds slowest (column sort against
// row-major input); the sorting formats dominate their totals with Build.
//
// `--build-scaling[=N]` additionally times the sorting formats' build()
// alone on N (default 10M) synthetic 4-D points at ARTSPARSE_THREADS=1 vs
// 8, asserting the serialized fragments are byte-identical across thread
// counts and reporting the build / sort-stage speedups.
#include <unistd.h>

#include <cstdlib>
#include <cstring>

#include "bench_common.hpp"

namespace {

using namespace artsparse;

/// N random 4-D points (duplicates allowed, like a worst-case ingest).
CoordBuffer make_scaling_coords(std::size_t n, const Shape& shape) {
  Xoshiro256 rng(17);
  std::vector<index_t> flat;
  flat.reserve(n * shape.rank());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t dim = 0; dim < shape.rank(); ++dim) {
      flat.push_back(rng.next_below(shape.extent(dim)));
    }
  }
  return CoordBuffer(shape.rank(), std::move(flat));
}

struct BuildTiming {
  double build = 0.0;
  double sort = 0.0;
  Bytes bytes;
};

/// Best-of-2 build() wall time under the current ARTSPARSE_THREADS.
BuildTiming time_build(OrgKind org, const CoordBuffer& coords,
                       const Shape& shape) {
  BuildTiming best;
  for (int round = 0; round < 2; ++round) {
    auto format = make_format(org);
    WallTimer timer;
    format->build(coords, shape);
    const double build = timer.seconds();
    if (round == 0 || build < best.build) {
      best.build = build;
      best.sort = format->last_build_sort_seconds();
      best.bytes = serialize_format(*format);
    }
  }
  return best;
}

int run_build_scaling(std::size_t n) {
  const Shape shape{256, 256, 256, 256};
  std::printf("\nBuild scaling — %zu random 4D points in %s, "
              "ARTSPARSE_THREADS 1 vs 8\n\n",
              n, shape.to_string().c_str());
  const CoordBuffer coords = make_scaling_coords(n, shape);

  const OrgKind sorting_orgs[] = {OrgKind::kGcsr, OrgKind::kGcsc,
                                  OrgKind::kCsf, OrgKind::kSortedCoo};
  TextTable table({"Org", "Build @1", "Build @8", "Speedup", "Sort @1",
                   "Sort @8", "Sort speedup", "Bytes equal"});
  bool all_equal = true;
  double min_sort_speedup = 0.0;
  for (OrgKind org : sorting_orgs) {
    ::setenv("ARTSPARSE_THREADS", "1", 1);
    const BuildTiming serial = time_build(org, coords, shape);
    ::setenv("ARTSPARSE_THREADS", "8", 1);
    const BuildTiming parallel = time_build(org, coords, shape);
    ::unsetenv("ARTSPARSE_THREADS");

    const bool equal = serial.bytes == parallel.bytes;
    all_equal = all_equal && equal;
    const double build_speedup =
        parallel.build > 0.0 ? serial.build / parallel.build : 0.0;
    const double sort_speedup =
        parallel.sort > 0.0 ? serial.sort / parallel.sort : 0.0;
    if (min_sort_speedup == 0.0 || sort_speedup < min_sort_speedup) {
      min_sort_speedup = sort_speedup;
    }
    char speedup_cell[32];
    std::snprintf(speedup_cell, sizeof(speedup_cell), "%.2fx",
                  build_speedup);
    char sort_cell[32];
    std::snprintf(sort_cell, sizeof(sort_cell), "%.2fx", sort_speedup);
    table.add_row({to_string(org), format_seconds(serial.build),
                   format_seconds(parallel.build), speedup_cell,
                   format_seconds(serial.sort),
                   format_seconds(parallel.sort), sort_cell,
                   equal ? "yes" : "NO"});
  }
  std::fputs(table.str().c_str(), stdout);
  std::printf("\nchecks: serialized bytes identical across thread counts "
              "%s; min sort-stage speedup %.2fx %s\n",
              all_equal ? "OK" : "FAILED",
              min_sort_speedup,
              min_sort_speedup >= 2.0 ? "OK" : "(below 2x — machine-bound)");
  artsparse::bench::emit_csv(table, "table3_build_scaling");
  // Byte equality is a correctness contract and fails the run; the speedup
  // depends on the host's core count and only prints.
  return all_equal ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace artsparse;
  const ScaleKind scale = scale_from_args(argc, argv);

  // `--build-scaling[=N]` runs only the thread-scaling section.
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--build-scaling", 15) == 0) {
      std::size_t n = 10'000'000;
      if (argv[i][15] == '=') {
        n = static_cast<std::size_t>(std::strtoull(argv[i] + 16, nullptr, 10));
      }
      return run_build_scaling(n);
    }
  }

  const Workload w = make_workload(4, PatternKind::kMsp, scale);
  const SparseDataset dataset = make_dataset(w.shape, w.spec, w.seed);
  std::printf("Table III — write-time breakdown, 4D MSP %s, %zu points\n\n",
              w.shape.to_string().c_str(), dataset.point_count());

  auto options = bench::default_options();
  options.repeats = 5;  // totals here are ~5 ms at small scale; damp noise
  std::vector<Measurement> measurements;
  for (OrgKind org : kPaperOrgs) {
    measurements.push_back(
        run_dataset(dataset, w.read_region(), w.name, org, options));
  }

  TextTable table({"Phase", "COO", "LINEAR", "GCSR++", "GCSC++", "CSF"});
  auto row = [&](const char* name, auto getter) {
    std::vector<std::string> cells{name};
    for (const Measurement& m : measurements) {
      cells.push_back(format_seconds(getter(m.write_times)));
    }
    table.add_row(std::move(cells));
  };
  row("Build", [](const WriteBreakdown& t) { return t.build; });
  row("- sort", [](const WriteBreakdown& t) { return t.build_sort; });
  row("- assemble",
      [](const WriteBreakdown& t) { return t.build - t.build_sort; });
  row("Reorg.", [](const WriteBreakdown& t) { return t.reorg; });
  row("Write", [](const WriteBreakdown& t) { return t.write; });
  row("Others", [](const WriteBreakdown& t) { return t.others; });
  row("Sum", [](const WriteBreakdown& t) { return t.total(); });

  std::fputs(table.str().c_str(), stdout);

  const auto& coo = measurements[0];
  const auto& linear = measurements[1];
  // At small scale the totals differ by ~1 ms; allow scheduler noise of
  // 1 ms on the total comparison (the write-phase relation is the
  // physical, bandwidth-bound claim and gets no slack).
  std::printf("\nchecks: COO build ~0 (%.4fs) %s; COO write > LINEAR write "
              "(%.4fs vs %.4fs) %s; LINEAR total <~ COO total %s\n",
              coo.write_times.build,
              coo.write_times.build < 0.01 ? "OK" : "UNEXPECTED",
              coo.write_times.write, linear.write_times.write,
              coo.write_times.write > linear.write_times.write ? "OK"
                                                               : "UNEXPECTED",
              linear.write_times.total() < coo.write_times.total() + 1e-3
                  ? "OK"
                  : "UNEXPECTED");
  bench::emit_csv(table, "table3_breakdown");
  bench::emit_json(measurements, "table3_breakdown");
  return bench::any_unverified(measurements) ? 1 : 0;
}
