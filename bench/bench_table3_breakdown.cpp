// Table III: breakdown of the total time to write sparse tensors for the
// 4-D MSP pattern — Build / Reorg / Write / Others per organization.
//
// Expected shape (paper): COO builds in ~zero time but writes the largest
// file; LINEAR's total beats COO; GCSC++ builds slowest (column sort against
// row-major input); the sorting formats dominate their totals with Build.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace artsparse;
  const ScaleKind scale = scale_from_args(argc, argv);

  const Workload w = make_workload(4, PatternKind::kMsp, scale);
  const SparseDataset dataset = make_dataset(w.shape, w.spec, w.seed);
  std::printf("Table III — write-time breakdown, 4D MSP %s, %zu points\n\n",
              w.shape.to_string().c_str(), dataset.point_count());

  auto options = bench::default_options();
  options.repeats = 5;  // totals here are ~5 ms at small scale; damp noise
  std::vector<Measurement> measurements;
  for (OrgKind org : kPaperOrgs) {
    measurements.push_back(
        run_dataset(dataset, w.read_region(), w.name, org, options));
  }

  TextTable table({"Phase", "COO", "LINEAR", "GCSR++", "GCSC++", "CSF"});
  auto row = [&](const char* name, auto getter) {
    std::vector<std::string> cells{name};
    for (const Measurement& m : measurements) {
      cells.push_back(format_seconds(getter(m.write_times)));
    }
    table.add_row(std::move(cells));
  };
  row("Build", [](const WriteBreakdown& t) { return t.build; });
  row("Reorg.", [](const WriteBreakdown& t) { return t.reorg; });
  row("Write", [](const WriteBreakdown& t) { return t.write; });
  row("Others", [](const WriteBreakdown& t) { return t.others; });
  row("Sum", [](const WriteBreakdown& t) { return t.total(); });

  std::fputs(table.str().c_str(), stdout);

  const auto& coo = measurements[0];
  const auto& linear = measurements[1];
  // At small scale the totals differ by ~1 ms; allow scheduler noise of
  // 1 ms on the total comparison (the write-phase relation is the
  // physical, bandwidth-bound claim and gets no slack).
  std::printf("\nchecks: COO build ~0 (%.4fs) %s; COO write > LINEAR write "
              "(%.4fs vs %.4fs) %s; LINEAR total <~ COO total %s\n",
              coo.write_times.build,
              coo.write_times.build < 0.01 ? "OK" : "UNEXPECTED",
              coo.write_times.write, linear.write_times.write,
              coo.write_times.write > linear.write_times.write ? "OK"
                                                               : "UNEXPECTED",
              linear.write_times.total() < coo.write_times.total() + 1e-3
                  ? "OK"
                  : "UNEXPECTED");
  bench::emit_csv(table, "table3_breakdown");
  bench::emit_json(measurements, "table3_breakdown");
  return bench::any_unverified(measurements) ? 1 : 0;
}
