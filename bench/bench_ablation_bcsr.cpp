// Ablation: the Block-CSR extension (Related Work [30]) against the
// paper's compact formats across the full grid. Expected: on spatially
// clustered patterns (TSP bands, MSP blocks) the per-block bitmaps beat a
// word per point; on scattered GSP the blocks degenerate toward one point
// each and BCSR loses its edge.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace artsparse;
  const ScaleKind scale = scale_from_args(argc, argv);

  std::printf("Ablation — BCSR vs LINEAR/GCSR++ index bytes and region "
              "read time (%s scale)\n\n",
              scale == ScaleKind::kPaper ? "paper" : "small");

  const std::vector<OrgKind> orgs{OrgKind::kLinear, OrgKind::kGcsr,
                                  OrgKind::kBcsr};
  const auto measurements =
      run_grid(paper_grid(scale), orgs, bench::default_options());

  TextTable table({"Workload", "LINEAR idx B", "GCSR++ idx B", "BCSR idx B",
                   "LINEAR read s", "GCSR++ read s", "BCSR read s"});
  std::map<std::string, std::map<OrgKind, const Measurement*>> cells;
  for (const Measurement& m : measurements) {
    if (!m.verified) {
      std::printf("FATAL: %s failed verification on %s\n",
                  to_string(m.org).c_str(), m.workload.c_str());
      return 1;
    }
    cells[m.workload][m.org] = &m;
  }

  std::size_t bcsr_smaller_on_clustered = 0;
  std::size_t clustered_cells = 0;
  for (const Workload& w : paper_grid(scale)) {
    const auto& row = cells.at(w.name);
    table.add_row(
        {w.name, std::to_string(row.at(OrgKind::kLinear)->index_bytes),
         std::to_string(row.at(OrgKind::kGcsr)->index_bytes),
         std::to_string(row.at(OrgKind::kBcsr)->index_bytes),
         format_seconds(row.at(OrgKind::kLinear)->read_times.total()),
         format_seconds(row.at(OrgKind::kGcsr)->read_times.total()),
         format_seconds(row.at(OrgKind::kBcsr)->read_times.total())});
    // Only TSP blocks are genuinely dense at Table II densities; MSP's
    // calibrated "dense" region is itself only 1-9% filled, so its 8x8
    // blocks average under a handful of points — bitmap overhead loses
    // there, which the table shows honestly.
    if (w.pattern == PatternKind::kTsp) {
      ++clustered_cells;
      if (row.at(OrgKind::kBcsr)->index_bytes <
          row.at(OrgKind::kLinear)->index_bytes) {
        ++bcsr_smaller_on_clustered;
      }
    }
  }

  std::fputs(table.str().c_str(), stdout);
  std::printf("\nchecks: BCSR index smaller than LINEAR on %zu of %zu "
              "banded (TSP) cells\n",
              bcsr_smaller_on_clustered, clustered_cells);
  bench::emit_csv(table, "ablation_bcsr");
  return 0;
}
