// Extension bench: iteration-bound kernels (SpMV on 2-D, MTTKRP on 3-D —
// the SPLATT workload CSF was designed for) across organizations. All
// organizations iterate all nnz, so this measures each layout's native
// traversal throughput rather than point queries.
#include "bench_common.hpp"

namespace {

using namespace artsparse;

double time_best_of(int repeats, const std::function<void()>& fn) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    WallTimer timer;
    fn();
    best = std::min(best, timer.seconds());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace artsparse;
  const ScaleKind scale = scale_from_args(argc, argv);

  std::printf("Kernels — SpMV (2-D) and MTTKRP (3-D, rank 8) per "
              "organization (%s scale)\n\n",
              scale == ScaleKind::kPaper ? "paper" : "small");

  const Workload w2 = make_workload(2, PatternKind::kGsp, scale);
  const SparseDataset mat = make_dataset(w2.shape, w2.spec, w2.seed);
  const Workload w3 = make_workload(3, PatternKind::kGsp, scale);
  const SparseDataset cube = make_dataset(w3.shape, w3.spec, w3.seed);

  std::vector<value_t> x(static_cast<std::size_t>(w2.shape.extent(1)));
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = 1.0 + 1e-3 * static_cast<double>(i % 97);
  }
  constexpr std::size_t kRank = 8;
  DenseMatrix B(static_cast<std::size_t>(w3.shape.extent(1)), kRank, 0.5);
  DenseMatrix C(static_cast<std::size_t>(w3.shape.extent(2)), kRank, 0.25);

  TextTable table({"Org", "SpMV ms", "SpMV Mnnz/s", "MTTKRP ms",
                   "MTTKRP Mnnz/s", "checksum"});
  double reference_checksum = 0.0;
  bool checksums_agree = true;
  for (OrgKind org : kPaperOrgs) {
    const SparseTensor A(mat, org);
    const SparseTensor X(cube, org);

    std::vector<value_t> y;
    const double spmv_s = time_best_of(3, [&] { y = spmv(A, x); });
    DenseMatrix M;
    const double mttkrp_s = time_best_of(3, [&] { M = mttkrp(X, B, C); });

    double checksum = 0.0;
    for (value_t v : y) checksum += v;
    for (value_t v : M.data()) checksum += v;
    if (reference_checksum == 0.0) {
      reference_checksum = checksum;
    } else if (std::abs(checksum - reference_checksum) >
               1e-6 * std::abs(reference_checksum)) {
      checksums_agree = false;
    }

    table.add_row(
        {to_string(org), format_fixed(spmv_s * 1e3, 2),
         format_fixed(static_cast<double>(mat.point_count()) / spmv_s / 1e6,
                      1),
         format_fixed(mttkrp_s * 1e3, 2),
         format_fixed(static_cast<double>(cube.point_count()) / mttkrp_s /
                          1e6,
                      1),
         format_fixed(checksum, 3)});
  }

  std::fputs(table.str().c_str(), stdout);
  std::printf("\nchecks: all organizations computed identical results %s\n",
              checksums_agree ? "OK" : "MISMATCH");
  bench::emit_csv(table, "ops_kernels");
  return checksums_agree ? 0 : 1;
}
