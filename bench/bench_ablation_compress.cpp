// Ablation: Section II claims general compression is orthogonal to the
// choice of sparse organization (pick an organization first, compress on
// top, as TileDB/HDF5 do). This bench applies each codec to each
// organization's index for one 3-D GSP workload and reports compressed
// sizes — the organization ordering must be preserved under every codec.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace artsparse;
  const ScaleKind scale = scale_from_args(argc, argv);

  const Workload w = make_workload(3, PatternKind::kGsp, scale);
  const SparseDataset dataset = make_dataset(w.shape, w.spec, w.seed);
  std::printf("Ablation — codec x organization index bytes, %s, %zu points\n\n",
              w.shape.to_string().c_str(), dataset.point_count());

  const CodecKind codecs[] = {CodecKind::kIdentity, CodecKind::kDelta,
                              CodecKind::kVarint, CodecKind::kRle,
                              CodecKind::kDeltaVarint};

  TextTable table({"Codec", "COO", "LINEAR", "GCSR++", "GCSC++", "CSF"});
  // Build each organization once; codecs are applied to the serialized
  // index.
  std::vector<Bytes> indexes;
  for (OrgKind org : kPaperOrgs) {
    auto format = make_format(org);
    format->build(dataset.coords, dataset.shape);
    indexes.push_back(serialize_format(*format));
  }

  std::size_t ordering_preserved = 0;
  for (CodecKind kind : codecs) {
    const auto codec = make_codec(kind);
    std::vector<std::string> row{to_string(kind)};
    std::vector<std::size_t> sizes;
    for (const Bytes& index : indexes) {
      const Bytes coded = codec->encode(index);
      // Sanity: decodable back to the identical index.
      if (codec->decode(coded) != index) {
        std::printf("FATAL: codec %s corrupted an index\n",
                    to_string(kind).c_str());
        return 1;
      }
      sizes.push_back(coded.size());
      row.push_back(std::to_string(coded.size()));
    }
    table.add_row(std::move(row));
    // Organization ordering under this codec: LINEAR smallest, COO largest.
    const std::size_t coo = sizes[0];
    const std::size_t lin = sizes[1];
    if (lin <= sizes[2] && lin <= sizes[3] && lin <= sizes[4] && lin <= coo) {
      ++ordering_preserved;
    }
  }

  std::fputs(table.str().c_str(), stdout);
  std::printf("\nchecks: LINEAR stays smallest under %zu of %zu codecs "
              "(orthogonality of compression and organization)\n",
              ordering_preserved, std::size(codecs));
  bench::emit_csv(table, "ablation_compress");
  return 0;
}
