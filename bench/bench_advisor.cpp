// Future-work bench: does the advisor's cost model pick organizations that
// measure well? For each grid cell, compare the advisor's balanced-weights
// recommendation against the measured per-cell score ranking.
#include <cmath>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace artsparse;
  const ScaleKind scale = scale_from_args(argc, argv);

  std::printf("Advisor vs measurement (%s scale)\n\n",
              scale == ScaleKind::kPaper ? "paper" : "small");
  const auto measurements = bench::run_paper_grid(scale);

  std::map<std::string, std::vector<const Measurement*>> cells;
  for (const Measurement& m : measurements) {
    cells[m.workload].push_back(&m);
  }

  TextTable table({"Workload", "Advisor pick", "Measured best",
                   "Pick's cost vs best", "Agree"});
  std::size_t near_optimal = 0;
  for (const Workload& w : paper_grid(scale)) {
    const SparseDataset dataset = make_dataset(w.shape, w.spec, w.seed);
    const SparsityProfile profile =
        profile_sparsity(dataset.coords, dataset.shape);
    const double queries_per_write =
        static_cast<double>(w.read_region().cell_count()) /
        static_cast<double>(dataset.point_count());
    const Recommendation rec = recommend_organization(
        profile, WorkloadWeights::balanced(), queries_per_write);

    // Measured per-cell score: normalized write + read + size.
    const auto& cell = cells.at(w.name);
    auto cell_score = [&](OrgKind org) {
      double max_w = 0, max_r = 0, max_s = 0;
      for (const Measurement* m : cell) {
        max_w = std::max(max_w, m->write_times.total());
        max_r = std::max(max_r, m->read_times.total());
        max_s = std::max(max_s, static_cast<double>(m->file_bytes));
      }
      for (const Measurement* m : cell) {
        if (m->org == org) {
          return m->write_times.total() / max_w +
                 m->read_times.total() / max_r +
                 static_cast<double>(m->file_bytes) / max_s;
        }
      }
      return 3.0;
    };
    OrgKind measured_best = OrgKind::kCoo;
    double best_score = 1e300;
    for (OrgKind org : kPaperOrgs) {
      const double s = cell_score(org);
      if (s < best_score) {
        best_score = s;
        measured_best = org;
      }
    }
    const OrgKind pick = rec.best().org;
    const double regret = cell_score(pick) / best_score;
    if (regret < 1.5) ++near_optimal;
    table.add_row({w.name, to_string(pick), to_string(measured_best),
                   format_fixed(regret, 2) + "x",
                   pick == measured_best ? "yes" : "no"});
  }

  std::fputs(table.str().c_str(), stdout);
  std::printf("\nchecks: advisor within 1.5x of the measured best in %zu of "
              "%zu cells\n",
              near_optimal, cells.size());
  bench::emit_csv(table, "advisor");
  return bench::any_unverified(measurements) ? 1 : 0;
}
