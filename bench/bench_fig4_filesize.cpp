// Fig. 4: file size of the organizations across patterns and dimensions.
// Expected shape: LINEAR < GCSR++ ~= GCSC++ <= CSF <= COO, with COO ~d x
// LINEAR's index and CSF varying with the pattern's prefix sharing.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace artsparse;
  const ScaleKind scale = scale_from_args(argc, argv);

  std::printf("Fig. 4 — fragment file size in bytes (%s scale)\n\n",
              scale == ScaleKind::kPaper ? "paper" : "small");
  const auto measurements = bench::run_paper_grid(scale);

  TextTable table({"Workload", "Points", "COO", "LINEAR", "GCSR++",
                   "GCSC++", "CSF"});
  std::map<std::string, std::map<OrgKind, const Measurement*>> cells;
  for (const Measurement& m : measurements) {
    cells[m.workload][m.org] = &m;
  }
  for (const Workload& w : paper_grid(scale)) {
    const auto& row = cells.at(w.name);
    std::vector<std::string> out{
        w.name, std::to_string(row.begin()->second->point_count)};
    for (OrgKind org : kPaperOrgs) {
      out.push_back(std::to_string(row.at(org)->file_bytes));
    }
    table.add_row(std::move(out));
  }
  std::fputs(table.str().c_str(), stdout);

  std::vector<std::string> rows;
  std::vector<std::string> series;
  for (OrgKind org : kPaperOrgs) series.push_back(to_string(org));
  std::vector<std::vector<double>> chart;
  for (const Workload& w : paper_grid(scale)) {
    rows.push_back(w.name);
    std::vector<double> bar;
    for (OrgKind org : kPaperOrgs) {
      bar.push_back(static_cast<double>(cells.at(w.name).at(org)->file_bytes));
    }
    chart.push_back(std::move(bar));
  }
  std::printf("\n%s", bar_chart("Fig. 4 — file size (bytes)", rows, series,
                                chart).c_str());

  std::size_t ordering_holds = 0;
  std::size_t coo_d_times_linear = 0;
  std::size_t n_cells = 0;
  for (const auto& [name, row] : cells) {
    ++n_cells;
    const auto coo = row.at(OrgKind::kCoo)->index_bytes;
    const auto lin = row.at(OrgKind::kLinear)->index_bytes;
    const auto gcsr = row.at(OrgKind::kGcsr)->index_bytes;
    const auto gcsc = row.at(OrgKind::kGcsc)->index_bytes;
    const auto csf = row.at(OrgKind::kCsf)->index_bytes;
    if (lin <= gcsr && gcsr <= gcsc + 64 && gcsc <= coo + 64 && csf <= coo)
      ++ordering_holds;
    const double ratio = static_cast<double>(coo) / static_cast<double>(lin);
    const auto rank = row.at(OrgKind::kCoo)->rank;
    if (ratio > 0.8 * static_cast<double>(rank) &&
        ratio < 1.2 * static_cast<double>(rank)) {
      ++coo_d_times_linear;
    }
  }
  std::printf("\nchecks (cells of %zu): LINEAR<=GCSR++<=GCSC++<=COO and "
              "CSF<=COO in %zu; COO ~ d x LINEAR in %zu\n",
              n_cells, ordering_holds, coo_d_times_linear);
  bench::emit_csv(table, "fig4_file_size");
  return bench::any_unverified(measurements) ? 1 : 0;
}
