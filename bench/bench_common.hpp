// Shared plumbing for the table/figure bench binaries: grid execution with
// progress output and CSV emission next to the binary.
#pragma once

#include <cstdio>
#include <filesystem>
#include <vector>

#include "artsparse.hpp"

namespace artsparse::bench {

inline HarnessOptions default_options() {
  HarnessOptions options;
  options.work_dir = std::filesystem::temp_directory_path();
  options.device = DeviceModel::lustre_like();
  options.verify = true;
  options.repeats = 2;  // best-of-2 damps scheduler noise
  return options;
}

/// Runs the full paper grid (every workload x the paper's five
/// organizations) with progress lines on stderr.
inline std::vector<Measurement> run_paper_grid(ScaleKind scale) {
  const auto workloads = paper_grid(scale);
  const std::vector<OrgKind> orgs(kPaperOrgs, kPaperOrgs + 5);
  return run_grid(workloads, orgs, default_options(),
                  [](const Measurement& m) {
                    std::fprintf(stderr,
                                 "  [%s %s] write %.4fs read %.4fs "
                                 "file %zu B cache %zu/%zu%s\n",
                                 m.workload.c_str(),
                                 to_string(m.org).c_str(),
                                 m.write_times.total(),
                                 m.read_times.total(), m.file_bytes,
                                 m.read_times.cache_hits,
                                 m.read_times.cache_misses,
                                 m.verified ? "" : "  **VERIFY FAILED**");
                  });
}

/// Writes the table's CSV into ./bench_results/<name>.csv (best effort).
inline void emit_csv(const TextTable& table, const std::string& name) {
  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  if (ec) return;
  try {
    table.write_csv(std::filesystem::path("bench_results") / (name + ".csv"));
    std::printf("(CSV written to bench_results/%s.csv)\n", name.c_str());
  } catch (const Error&) {
    // CSV emission is a convenience; the table already went to stdout.
  }
}

/// Writes the measurements as ./bench_results/<name>.json (best effort):
/// the full per-run record including retry/backoff and cache counters that
/// the CSV's fixed columns elide.
inline void emit_json(const std::vector<Measurement>& measurements,
                      const std::string& name) {
  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  if (ec) return;
  try {
    write_json_report(
        std::filesystem::path("bench_results") / (name + ".json"),
        measurements);
    std::printf("(JSON written to bench_results/%s.json)\n", name.c_str());
  } catch (const Error&) {
    // JSON emission is a convenience; the table already went to stdout.
  }
}

/// True when any measurement failed verification (non-zero exit for CI).
inline bool any_unverified(const std::vector<Measurement>& measurements) {
  for (const Measurement& m : measurements) {
    if (!m.verified) return true;
  }
  return false;
}

}  // namespace artsparse::bench
