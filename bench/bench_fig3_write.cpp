// Fig. 3: writing time of the five organizations across patterns and
// dimensions. Expected shape: COO and LINEAR fastest overall; with the
// Lustre-like device model COO's larger fragment makes LINEAR the overall
// winner; GCSC++ slower than GCSR++ on row-major input; CSF in between.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace artsparse;
  const ScaleKind scale = scale_from_args(argc, argv);

  std::printf("Fig. 3 — total write time in seconds (%s scale)\n\n",
              scale == ScaleKind::kPaper ? "paper" : "small");
  const auto measurements = bench::run_paper_grid(scale);

  TextTable table({"Workload", "Points", "COO", "LINEAR", "GCSR++",
                   "GCSC++", "CSF"});
  std::map<std::string, std::map<OrgKind, const Measurement*>> cells;
  for (const Measurement& m : measurements) {
    cells[m.workload][m.org] = &m;
  }
  // Keep the paper's pattern-major ordering rather than map order.
  for (const Workload& w : paper_grid(scale)) {
    const auto& row = cells.at(w.name);
    std::vector<std::string> out{
        w.name, std::to_string(row.begin()->second->point_count)};
    for (OrgKind org : kPaperOrgs) {
      out.push_back(format_seconds(row.at(org)->write_times.total()));
    }
    table.add_row(std::move(out));
  }
  std::fputs(table.str().c_str(), stdout);

  // The figure itself, as ASCII bars.
  std::vector<std::string> rows;
  std::vector<std::string> series;
  for (OrgKind org : kPaperOrgs) series.push_back(to_string(org));
  std::vector<std::vector<double>> chart;
  for (const Workload& w : paper_grid(scale)) {
    rows.push_back(w.name);
    std::vector<double> bar;
    for (OrgKind org : kPaperOrgs) {
      bar.push_back(cells.at(w.name).at(org)->write_times.total());
    }
    chart.push_back(std::move(bar));
  }
  std::printf("\n%s", bar_chart("Fig. 3 — write time (s)", rows, series,
                                chart).c_str());

  // Ordering checks across the whole grid.
  std::size_t linear_beats_coo = 0;
  std::size_t gcsr_beats_gcsc = 0;
  std::size_t fast_orgs_beat_sorters = 0;
  std::size_t n_cells = 0;
  for (const auto& [name, row] : cells) {
    ++n_cells;
    const double coo = row.at(OrgKind::kCoo)->write_times.total();
    const double lin = row.at(OrgKind::kLinear)->write_times.total();
    const double gcsr = row.at(OrgKind::kGcsr)->write_times.total();
    const double gcsc = row.at(OrgKind::kGcsc)->write_times.total();
    const double csf = row.at(OrgKind::kCsf)->write_times.total();
    if (lin <= coo) ++linear_beats_coo;
    if (gcsr <= gcsc) ++gcsr_beats_gcsc;
    if (std::min(coo, lin) <= std::min({gcsr, gcsc, csf}))
      ++fast_orgs_beat_sorters;
  }
  std::printf("\nchecks (cells of %zu): LINEAR<=COO in %zu; "
              "GCSR++<=GCSC++ in %zu; COO/LINEAR fastest in %zu\n",
              n_cells, linear_beats_coo, gcsr_beats_gcsc,
              fast_orgs_beat_sorters);
  bench::emit_csv(table, "fig3_write_time");
  bench::emit_json(measurements, "fig3_write_time");
  return bench::any_unverified(measurements) ? 1 : 0;
}
