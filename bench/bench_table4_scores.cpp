// Table IV: overall scores of the organizations — every metric normalized
// by the per-cell maximum, averaged over dimensions, patterns, and metrics.
// Paper values: COO 0.76, LINEAR 0.34, GCSR++ 0.36, GCSC++ 0.50, CSF 0.48;
// the shape to reproduce is LINEAR best, GCSR++ close behind, COO worst.
#include <cmath>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace artsparse;
  const ScaleKind scale = scale_from_args(argc, argv);

  std::printf("Table IV — overall scores (%s scale, lower is better)\n\n",
              scale == ScaleKind::kPaper ? "paper" : "small");
  const auto measurements = bench::run_paper_grid(scale);
  const ScoreTable scores = compute_scores(measurements);

  TextTable table({"Metric", "COO", "LINEAR", "GCSR++", "GCSC++", "CSF"});
  auto add = [&](const std::string& name,
                 const std::map<OrgKind, double>& row) {
    std::vector<std::string> cells{name};
    for (OrgKind org : kPaperOrgs) {
      cells.push_back(format_fixed(row.at(org), 2));
    }
    table.add_row(std::move(cells));
  };
  for (Metric metric :
       {Metric::kWriteTime, Metric::kReadTime, Metric::kFileSize}) {
    add(to_string(metric), scores.per_metric.at(metric));
  }
  add("Scores (overall)", scores.overall);
  std::fputs(table.str().c_str(), stdout);

  std::printf("\npaper:            0.76    0.34     0.36     0.50   0.48\n");
  std::printf("checks: best=%s %s; COO worst %s; GCSR++ within 0.15 of "
              "LINEAR %s\n",
              to_string(scores.best()).c_str(),
              scores.best() == OrgKind::kLinear ||
                      scores.best() == OrgKind::kGcsr
                  ? "OK"
                  : "UNEXPECTED",
              scores.overall.at(OrgKind::kCoo) >=
                      scores.overall.at(OrgKind::kLinear)
                  ? "OK"
                  : "UNEXPECTED",
              std::abs(scores.overall.at(OrgKind::kGcsr) -
                       scores.overall.at(OrgKind::kLinear)) < 0.15
                  ? "OK"
                  : "UNEXPECTED");
  bench::emit_csv(table, "table4_scores");
  return bench::any_unverified(measurements) ? 1 : 0;
}
