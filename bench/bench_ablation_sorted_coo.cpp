// Ablation: the sorted-COO trade-off the paper discusses in Section II-A —
// "sorting the coordinates can reduce the complexity of read ... but takes
// extra time O(n log n) to sort before write". Measures unsorted COO vs
// the SortedCOO extension on build time and region-read time.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace artsparse;
  const ScaleKind scale = scale_from_args(argc, argv);

  std::printf("Ablation — COO vs sorted COO (%s scale)\n\n",
              scale == ScaleKind::kPaper ? "paper" : "small");

  const auto options = bench::default_options();
  TextTable table({"Workload", "Org", "Build s", "Read s", "File bytes"});
  std::size_t sorted_reads_faster = 0;
  std::size_t unsorted_builds_faster = 0;
  std::size_t cells = 0;

  for (std::size_t rank = 2; rank <= 4; ++rank) {
    const Workload w = make_workload(rank, PatternKind::kGsp, scale);
    const SparseDataset dataset = make_dataset(w.shape, w.spec, w.seed);
    const Box region = w.read_region();

    const Measurement coo =
        run_dataset(dataset, region, w.name, OrgKind::kCoo, options);
    const Measurement sorted =
        run_dataset(dataset, region, w.name, OrgKind::kSortedCoo, options);
    for (const Measurement* m : {&coo, &sorted}) {
      table.add_row({w.name, to_string(m->org),
                     format_seconds(m->write_times.build),
                     format_seconds(m->read_times.total()),
                     std::to_string(m->file_bytes)});
      if (!m->verified) {
        std::printf("FATAL: %s failed verification\n",
                    to_string(m->org).c_str());
        return 1;
      }
    }
    ++cells;
    if (sorted.read_times.total() < coo.read_times.total())
      ++sorted_reads_faster;
    if (coo.write_times.build <= sorted.write_times.build)
      ++unsorted_builds_faster;
  }

  std::fputs(table.str().c_str(), stdout);
  std::printf("\nchecks (cells of %zu): sorted COO reads faster in %zu; "
              "unsorted COO builds at least as fast in %zu\n",
              cells, sorted_reads_faster, unsorted_builds_faster);
  bench::emit_csv(table, "ablation_sorted_coo");
  return 0;
}
