// Fig. 5: time to read the paper's standard region (origin m/2, size m/10)
// from sparse tensors stored in each organization. Expected shape: COO and
// LINEAR are far slower than the compressed organizations (full scans per
// query); CSF loses to GCSR++/GCSC++ at 2-D but catches up or wins as the
// rank grows.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace artsparse;
  const ScaleKind scale = scale_from_args(argc, argv);

  std::printf("Fig. 5 — region read time in seconds (%s scale)\n\n",
              scale == ScaleKind::kPaper ? "paper" : "small");
  const auto measurements = bench::run_paper_grid(scale);

  TextTable table({"Workload", "Queries", "Found", "COO", "LINEAR",
                   "GCSR++", "GCSC++", "CSF"});
  std::map<std::string, std::map<OrgKind, const Measurement*>> cells;
  for (const Measurement& m : measurements) {
    cells[m.workload][m.org] = &m;
  }
  for (const Workload& w : paper_grid(scale)) {
    const auto& row = cells.at(w.name);
    std::vector<std::string> out{
        w.name, std::to_string(row.begin()->second->query_count),
        std::to_string(row.begin()->second->found_count)};
    for (OrgKind org : kPaperOrgs) {
      out.push_back(format_seconds(row.at(org)->read_times.total()));
    }
    table.add_row(std::move(out));
  }
  std::fputs(table.str().c_str(), stdout);

  std::vector<std::string> rows;
  std::vector<std::string> series;
  for (OrgKind org : kPaperOrgs) series.push_back(to_string(org));
  std::vector<std::vector<double>> chart;
  for (const Workload& w : paper_grid(scale)) {
    rows.push_back(w.name);
    std::vector<double> bar;
    for (OrgKind org : kPaperOrgs) {
      bar.push_back(cells.at(w.name).at(org)->read_times.total());
    }
    chart.push_back(std::move(bar));
  }
  // Log scale: COO is orders of magnitude slower than the tree formats.
  std::printf("\n%s", bar_chart("Fig. 5 — region read time (s)", rows,
                                series, chart, 48, true).c_str());

  std::size_t scans_slower = 0;
  std::size_t n_cells = 0;
  double csf_vs_gcsr_2d = 0.0;
  double csf_vs_gcsr_4d = 0.0;
  for (const auto& [name, row] : cells) {
    ++n_cells;
    const double coo = row.at(OrgKind::kCoo)->read_times.total();
    const double lin = row.at(OrgKind::kLinear)->read_times.total();
    const double gcsr = row.at(OrgKind::kGcsr)->read_times.total();
    const double gcsc = row.at(OrgKind::kGcsc)->read_times.total();
    const double csf = row.at(OrgKind::kCsf)->read_times.total();
    if (std::min(coo, lin) >= std::max({gcsr, gcsc, csf})) ++scans_slower;
    // The rank crossover is about the existence-*query* phase (the paper:
    // "the time allocated to querying the existence of a value ... is
    // particularly significant"); at scaled-down query counts the
    // fragment-extract I/O would otherwise mask it.
    const auto rank = row.at(OrgKind::kCoo)->rank;
    const double csf_q = row.at(OrgKind::kCsf)->read_times.query;
    const double gcsr_q = row.at(OrgKind::kGcsr)->read_times.query;
    if (rank == 2) csf_vs_gcsr_2d += csf_q / gcsr_q;
    if (rank == 4) csf_vs_gcsr_4d += csf_q / gcsr_q;
  }
  std::printf("\nchecks (cells of %zu): COO/LINEAR slowest in %zu; "
              "CSF/GCSR++ existence-query ratio: 2-D avg %.2f vs 4-D avg "
              "%.2f (paper: CSF relatively better at higher rank)\n",
              n_cells, scans_slower, csf_vs_gcsr_2d / 3.0,
              csf_vs_gcsr_4d / 3.0);
  bench::emit_csv(table, "fig5_read_time");
  return bench::any_unverified(measurements) ? 1 : 0;
}
