// Ablation: monolithic fragment vs tile-decomposed storage (the paper's
// block-based structure remark). Tiling costs a little extra metadata but
// lets small-region reads open only the overlapping tiles; the per-tile
// advisor policy additionally picks organizations per block.
#include <cmath>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace artsparse;
  const ScaleKind scale = scale_from_args(argc, argv);

  const Workload w = make_workload(2, PatternKind::kMsp, scale);
  const SparseDataset dataset = make_dataset(w.shape, w.spec, w.seed);
  // Small target region: one tile's worth in the dense MSP block.
  const index_t m = w.shape.extent(0);
  const Box small_region({m / 3, m / 3}, {m / 3 + m / 16, m / 3 + m / 16});

  std::printf("Ablation — monolithic vs tiled storage, 2D MSP %s "
              "(%zu points), small region %s\n\n",
              w.shape.to_string().c_str(), dataset.point_count(),
              small_region.to_string().c_str());

  const auto base = std::filesystem::temp_directory_path() /
                    ("artsparse_tiles_" + std::to_string(::getpid()));
  TextTable table({"Layout", "Fragments", "File bytes", "Write s",
                   "Small-scan s", "Fragments opened", "Found"});

  struct Row {
    double scan_s;
    std::size_t opened;
    std::size_t found;
  };
  std::vector<Row> rows;

  // Monolithic GCSR++ baseline.
  {
    FragmentStore store(base / "mono", w.shape,
                        DeviceModel::lustre_like());
    WallTimer timer;
    store.write(dataset.coords, dataset.values, OrgKind::kGcsr);
    const double write_s = timer.seconds();
    const ReadResult scan = store.scan_region(small_region);
    table.add_row({"monolithic GCSR++", std::to_string(store.fragment_count()),
                   std::to_string(store.total_file_bytes()),
                   format_seconds(write_s),
                   format_seconds(scan.times.total()),
                   std::to_string(scan.fragments_visited),
                   std::to_string(scan.values.size())});
    rows.push_back({scan.times.total(), scan.fragments_visited,
                    scan.values.size()});
    store.clear();
  }

  // Tiled, fixed org and advisor-per-tile.
  const TileGrid grid(w.shape,
                      Shape::uniform(2, std::max<index_t>(1, m / 8)));
  const struct {
    const char* name;
    TilePolicy policy;
  } tiled_cases[] = {
      {"tiled GCSR++ (8x8 tiles)", TilePolicy::fixed(OrgKind::kGcsr)},
      {"tiled advisor-per-tile", TilePolicy::advisor()},
  };
  for (const auto& c : tiled_cases) {
    TiledStore store(base / c.name, grid, c.policy,
                     DeviceModel::lustre_like());
    WallTimer timer;
    const TiledWriteResult written =
        store.write(dataset.coords, dataset.values);
    const double write_s = timer.seconds();
    const ReadResult scan = store.scan_region(small_region);
    table.add_row({c.name, std::to_string(store.fragment_count()),
                   std::to_string(store.total_file_bytes()),
                   format_seconds(write_s),
                   format_seconds(scan.times.total()),
                   std::to_string(scan.fragments_visited),
                   std::to_string(scan.values.size())});
    rows.push_back({scan.times.total(), scan.fragments_visited,
                    scan.values.size()});
  }

  std::fputs(table.str().c_str(), stdout);
  std::error_code ec;
  std::filesystem::remove_all(base, ec);

  const bool same_results =
      rows[0].found == rows[1].found && rows[1].found == rows[2].found;
  const bool pruned = rows[1].opened < 64 && rows[2].opened < 64;
  // Per-fragment latency dominates at laptop sizes; the tiled layout wins
  // on extract volume once the monolithic fragment is large (--scale=paper),
  // so the small-scale check allows the fixed per-open cost.
  const bool faster =
      rows[1].scan_s <= rows[0].scan_s * 1.5 +
                            static_cast<double>(rows[1].opened) * 2e-3;
  std::printf("\nchecks: identical results %s; tile pruning engaged %s; "
              "tiled small-region scan competitive %s\n",
              same_results ? "OK" : "MISMATCH", pruned ? "OK" : "NO",
              faster ? "OK" : "NO");
  bench::emit_csv(table, "ablation_tiles");
  return same_results ? 0 : 1;
}
