// Service-layer concurrency bench: N client threads issuing overlapping
// box scans against one multi-fragment store, three ways —
//
//   direct        each op takes its own snapshot and runs scan_region;
//                 every op decodes every overlapping fragment itself.
//   batched       ops go through Service sessions, so concurrent scans
//                 group-commit into Snapshot::scan_batch and each touched
//                 fragment decodes once per batch.
//   batched+write batched clients racing a consolidate loop; snapshot
//                 isolation means readers never block on the writer.
//
// Expected shape: batched >= direct throughput once clients overlap (the
// coalesced column shows how many ops shared a batch), and the
// batched+write config stays in the same ballpark as batched — writers
// publish generations instead of stalling readers. The cache is disabled
// (budget 0) so decode work, not cache hits, is what batching saves.
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>

#include "bench_common.hpp"

int main() {
  using namespace artsparse;
  using Clock = std::chrono::steady_clock;

  const Shape shape{256, 256};
  const index_t kFragments = 16;
  const int kClients = 8;
  const int kOpsPerClient = 60;

  const auto dir = std::filesystem::temp_directory_path() /
                   ("artsparse_bench_service_" + std::to_string(::getpid()));
  auto cache = std::make_shared<FragmentCache>(0);  // decode cost visible
  FragmentStore store(dir, shape, DeviceModel::unthrottled(),
                      CodecKind::kIdentity, cache);

  // One fragment per row band; every scan region below crosses several
  // bands, so concurrent scans share fragments and batching has work to
  // coalesce.
  Xoshiro256 rng(11);
  const index_t band = shape.extent(0) / kFragments;
  for (index_t f = 0; f < kFragments; ++f) {
    CoordBuffer coords(2);
    std::vector<value_t> values;
    for (index_t r = f * band; r < (f + 1) * band; ++r) {
      for (index_t c = 0; c < shape.extent(1); c += 2) {
        coords.append({r, c});
        values.push_back(rng.next_double());
      }
    }
    store.write(coords, values, OrgKind::kGcsr);
  }

  // Per-client probe regions: staggered 96x96 windows, heavily
  // overlapping between neighbouring clients.
  auto region_for = [&](int client, int op) {
    const index_t lo =
        static_cast<index_t>(((client * 13 + op * 7) % 160));
    return Box({lo, lo / 2}, {lo + 95, lo / 2 + 95});
  };

  const std::size_t expected_total = [&] {
    std::size_t points = 0;
    for (int c = 0; c < kClients; ++c) {
      for (int op = 0; op < kOpsPerClient; ++op) {
        points += store.scan_region(region_for(c, op)).values.size();
      }
    }
    return points;
  }();

  struct Run {
    const char* name;
    double seconds = 0.0;
    std::size_t points = 0;
    std::uint64_t batches = 0;
    std::uint64_t coalesced = 0;
    std::uint64_t generations = 0;
  };

  auto drive = [&](Run& run, bool use_service, bool with_writer) {
    Service service(store, TenantQuota{});  // unlimited
    std::atomic<bool> stop_writer{false};
    std::thread writer;
    const std::uint64_t generation_start = store.generation();
    if (with_writer) {
      writer = std::thread([&] {
        while (!stop_writer.load(std::memory_order_relaxed)) {
          store.consolidate(OrgKind::kSortedCoo);
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
      });
    }

    std::atomic<std::size_t> points{0};
    const auto start = Clock::now();
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        Session session = service.session("bench");
        std::size_t local = 0;
        for (int op = 0; op < kOpsPerClient; ++op) {
          const Box region = region_for(c, op);
          const ReadResult result =
              use_service ? session.scan(region)
                          : store.snapshot().scan_region(region);
          local += result.values.size();
        }
        points.fetch_add(local, std::memory_order_relaxed);
      });
    }
    for (std::thread& client : clients) client.join();
    run.seconds = std::chrono::duration<double>(Clock::now() - start).count();
    if (with_writer) {
      stop_writer.store(true, std::memory_order_relaxed);
      writer.join();
    }
    run.points = points.load();
    const BatchStats stats = service.batch_stats();
    run.batches = stats.batches;
    run.coalesced = stats.coalesced();
    run.generations = store.generation() - generation_start;
  };

  Run direct{"direct"}, batched{"batched"}, racing{"batched+write"};
  drive(direct, /*use_service=*/false, /*with_writer=*/false);
  drive(batched, /*use_service=*/true, /*with_writer=*/false);
  drive(racing, /*use_service=*/true, /*with_writer=*/true);

  const std::size_t total_ops =
      static_cast<std::size_t>(kClients) * kOpsPerClient;
  TextTable table({"Config", "Wall", "Ops/s", "Batches", "Coalesced",
                   "Generations", "Points OK"});
  bool consistent = true;
  for (const Run* run : {&direct, &batched, &racing}) {
    const bool ok = run->points == expected_total;
    consistent = consistent && ok;
    table.add_row({run->name, format_seconds(run->seconds),
                   std::to_string(static_cast<std::uint64_t>(
                       total_ops / std::max(run->seconds, 1e-9))),
                   std::to_string(run->batches),
                   std::to_string(run->coalesced),
                   std::to_string(run->generations), ok ? "yes" : "NO"});
  }

  std::printf("Service concurrency — %d clients x %d scans, %zu fragments, "
              "cache disabled\n\n",
              kClients, kOpsPerClient, static_cast<std::size_t>(kFragments));
  std::fputs(table.str().c_str(), stdout);
  std::printf("\nchecks: every config returned the sequential point total "
              "%s; scans coalesced under load %s\n",
              consistent ? "OK" : "UNEXPECTED",
              batched.coalesced > 0 ? "OK" : "(no overlap this run)");
  bench::emit_csv(table, "service_concurrency");

  store.clear();
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return consistent ? 0 : 1;
}
