// Ablation: Algorithm 3's READ pays one existence query per region *cell*;
// a production store scans the index and touches only stored entries. This
// bench runs both paths over the paper's grid and reports the speedup —
// and shows the scan path collapsing the COO/LINEAR read penalty of Fig. 5
// (their scans are O(n) total instead of O(n * n_read)).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace artsparse;
  const ScaleKind scale = scale_from_args(argc, argv);

  std::printf("Ablation — per-cell queries (Algorithm 3) vs native box "
              "scan (%s scale)\n\n",
              scale == ScaleKind::kPaper ? "paper" : "small");

  const auto options = bench::default_options();
  TextTable table({"Workload", "Org", "Query-read s", "Scan-read s",
                   "Speedup", "Found"});
  std::size_t scan_wins = 0;
  std::size_t rows = 0;

  for (std::size_t rank : {2u, 3u}) {
    const Workload w = make_workload(rank, PatternKind::kGsp, scale);
    const SparseDataset dataset = make_dataset(w.shape, w.spec, w.seed);
    const Box region = w.read_region();

    for (OrgKind org : kPaperOrgs) {
      const auto dir =
          options.work_dir / ("artsparse_scan_" + std::to_string(::getpid()) +
                              "_" + std::to_string(rows));
      FragmentStore store(dir, w.shape, options.device, options.codec);
      store.write(dataset.coords, dataset.values, org);

      const ReadResult queried = store.read_region(region);
      const ReadResult scanned = store.scan_region(region);
      store.clear();
      std::error_code ec;
      std::filesystem::remove_all(dir, ec);

      if (scanned.values != queried.values) {
        std::printf("FATAL: scan and query disagree for %s\n",
                    to_string(org).c_str());
        return 1;
      }
      const double q = queried.times.total();
      const double s = scanned.times.total();
      table.add_row({w.name, to_string(org), format_seconds(q),
                     format_seconds(s), format_fixed(q / s, 1) + "x",
                     std::to_string(scanned.values.size())});
      ++rows;
      if (s <= q) ++scan_wins;
    }
  }

  std::fputs(table.str().c_str(), stdout);
  std::printf("\nchecks: native scan at least as fast in %zu of %zu rows\n",
              scan_wins, rows);
  bench::emit_csv(table, "ablation_scan");
  return 0;
}
